// Command pnmlint runs the project's determinism and ownership analyzers
// (internal/lint) over the repository:
//
//	pnmlint [dir | dir/...]...
//
// With no arguments it lints ./... from the current directory. Each
// finding is printed as file:line:col: analyzer: message; the exit status
// is 1 when there are findings, 2 on load or usage errors, 0 when clean.
//
// The suite enforces the invariants behind byte-identical experiment
// output: no wall-clock reads in deterministic packages (wallclock), no
// global math/rand use (globalrand), no map-iteration order reaching
// emitted bytes (maporder), and no goroutine-crossing method calls on
// // pnmlint:single-goroutine types (ownership). Intentional exceptions
// carry //pnmlint:allow <analyzer> <reason> annotations in the source.
package main

import (
	"flag"
	"fmt"
	"os"

	"pnm/internal/lint"
)

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pnmlint [flags] [dir | dir/...]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pnmlint:", err)
		os.Exit(2)
	}
	analyzers := lint.DefaultAnalyzers(prog.ModulePath)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}
	diags := lint.Run(prog, analyzers...)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
