// Command pnmlint runs the project's determinism, ownership, locking and
// allocation analyzers (internal/lint) over the repository:
//
//	pnmlint [flags] [dir | dir/...]...
//
// With no arguments it lints ./... from the current directory. Each
// finding is printed as file:line:col: analyzer: message (or as a JSON
// array with -json); the exit status is 1 when there are findings, 2 on
// load or usage errors, 0 when clean.
//
// The suite enforces the invariants behind byte-identical experiment
// output and the concurrent sink's safety: no wall-clock reads in
// deterministic packages (wallclock), no global math/rand use
// (globalrand), no map-iteration order reaching emitted bytes (maporder),
// no goroutine-crossing method calls on // pnmlint:single-goroutine types
// (ownership), no access to // pnmlint:guarded-by fields without their
// mutex (guardedby), no untracked goroutines in the deterministic and
// transport packages (golife), and no heap allocation inside
// // pnmlint:noalloc functions, checked against real `go build
// -gcflags=-m` escape analysis (noalloc). Intentional exceptions carry
// //pnmlint:allow <analyzer> <reason> annotations in the source.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pnm/internal/lint"
)

// jsonDiag is the machine-readable rendering of one finding, consumed by
// the CI problem matcher tooling and editor integrations.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pnmlint [flags] [dir | dir/...]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pnmlint:", err)
		os.Exit(2)
	}
	analyzers := lint.DefaultAnalyzers(prog.ModulePath)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}
	// The noalloc analyzer checks annotations against the compiler's own
	// escape analysis; a program that does not build cannot be linted.
	escapes, err := lint.LoadEscapes(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pnmlint:", err)
		os.Exit(2)
	}
	lint.AttachEscapes(analyzers, escapes)

	diags := lint.Run(prog, analyzers...)
	cwd, _ := os.Getwd()
	rel := func(path string) string {
		if cwd == "" {
			return path
		}
		if r, err := filepath.Rel(cwd, path); err == nil && !filepath.IsAbs(r) {
			return r
		}
		return path
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "pnmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = rel(d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
