// Command pnmload is the standalone load generator: it regenerates the
// seeded scenario traffic a pnmserve (or pnmlive -listen) with the same
// scenario flags expects — the mole's bogus reports, marked en route by
// every forwarder on its path — and replays it over TCP or UDP at a
// target rate.
//
// Usage:
//
//	pnmload -addr 127.0.0.1:7101 -nodes 300 -side 10 -range 1.3 -packets 400 -rate 2000
//
// -expect prints the canonical verdict line the receiving sink must end
// on (computed by folding the same stream in-process), so a loopback run
// is checkable with a string compare:
//
//	pnmload -addr ... -packets 400 -expect
//	pnmserve -listen ... -packets 400   # last line must match
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pnm/internal/loadgen"
	"pnm/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnmload:", err)
		os.Exit(1)
	}
}

// run executes the load generator.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pnmload", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7101", "ingest server address")
		udp        = fs.Bool("udp", false, "send UDP datagrams instead of a TCP stream")
		nodes      = fs.Int("nodes", 300, "scenario: sensor node count")
		side       = fs.Float64("side", 10, "scenario: deployment square side")
		radioRange = fs.Float64("range", 1.3, "scenario: radio range")
		seed       = fs.Int64("seed", 1, "scenario: RNG seed")
		packets    = fs.Int("packets", 400, "reports to replay")
		rate       = fs.Int("rate", 0, "target send rate in packets/s (0 = as fast as possible)")
		burst      = fs.Int("burst", 25, "packets per paced burst")
		expect     = fs.Bool("expect", false, "print the expected verdict and exit without sending")
		retries    = fs.Int("retries", 10, "connection attempts before giving up")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadgen.New(loadgen.Config{
		Nodes: *nodes, Side: *side, RadioRange: *radioRange, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if *expect {
		fmt.Fprintln(w, loadgen.FormatVerdict(sc.Verdict(*packets)))
		return nil
	}

	dial := func() (*transport.Client, error) {
		if *udp {
			return transport.DialUDP(*addr)
		}
		return transport.Dial(*addr)
	}
	var cl *transport.Client
	for attempt := 0; ; attempt++ {
		cl, err = dial()
		if err == nil {
			break
		}
		if attempt+1 >= *retries {
			return fmt.Errorf("connecting to %s: %w", *addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	stream := sc.Stream(*packets)
	start := time.Now()
	bytes := 0
	for sent := 0; sent < len(stream); {
		n := *burst
		if sent+n > len(stream) {
			n = len(stream) - sent
		}
		for i := 0; i < n; i++ {
			msg := stream[sent+i]
			if err := cl.Send(msg); err != nil {
				return fmt.Errorf("after %d packets: %w", sent+i, err)
			}
			bytes += transport.FrameHeaderLen + msg.WireSize()
		}
		sent += n
		if err := cl.Flush(); err != nil {
			return fmt.Errorf("after %d packets: %w", sent, err)
		}
		if *rate > 0 {
			// Sleep until the paced schedule catches up with what was sent.
			ahead := time.Duration(sent)*time.Second/time.Duration(*rate) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	if err := cl.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	pps := float64(len(stream)) / elapsed.Seconds()
	fmt.Fprintf(w, "sent %d frames, %d bytes in %v (%.0f pps) to %s\n",
		len(stream), bytes, elapsed.Round(time.Millisecond), pps, *addr)
	return nil
}
