package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pnm/internal/loadgen"
	"pnm/internal/transport"
)

// TestLoadReplay points the generator at an in-test transport server and
// checks the server's verdict matches -expect's ground-truth line.
func TestLoadReplay(t *testing.T) {
	const packets = 150
	sc, err := loadgen.New(loadgen.Config{Nodes: 80, Side: 5, RadioRange: 1.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.Listen("127.0.0.1:0", "", transport.Config{
		NewVerifier: sc.NewVerifier,
		Topo:        sc.Topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	args := []string{
		"-addr", srv.Addr().String(),
		"-nodes", "80", "-side", "5", "-range", "1.4", "-seed", "3",
		"-packets", "150", "-rate", "50000",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "sent 150 frames") {
		t.Fatalf("summary missing; output:\n%s", out.String())
	}
	if err := srv.WaitDelivered(packets, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	var expect bytes.Buffer
	if err := run(append(args, "-expect"), &expect); err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(expect.String())
	if got := loadgen.FormatVerdict(srv.Verdict()); got != want {
		t.Fatalf("server verdict differs from -expect\n got: %s\nwant: %s", got, want)
	}
}

// TestLoadConnectFailure checks the retry loop gives up with a useful
// error instead of spinning forever.
func TestLoadConnectFailure(t *testing.T) {
	err := run([]string{"-addr", "127.0.0.1:1", "-retries", "1", "-packets", "1"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "connecting to") {
		t.Fatalf("want connection error, got %v", err)
	}
}
