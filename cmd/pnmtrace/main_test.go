package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCleanScenario(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scheme", "pnm", "-attack", "none", "-n", "8", "-packets", "120", "-seed", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "one-hop precision: HELD") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "unequivocally identified: true") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunVerbose(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scheme", "nested", "-attack", "remove", "-n", "8", "-packets", "3", "-seed", "2", "-v"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pkt   1: accepted chain") {
		t.Fatalf("verbose output missing per-packet lines:\n%s", out)
	}
}

func TestRunDropSelfDefeats(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scheme", "nested", "-attack", "drop", "-n", "8", "-packets", "20", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "N/A") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunMisledScenario(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scheme", "naive", "-attack", "drop", "-n", "10", "-packets", "300", "-seed", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BROKEN") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scheme", "bogus"}, &buf); err == nil {
		t.Fatal("want error for unknown scheme")
	}
	if err := run([]string{"-attack", "bogus"}, &buf); err == nil {
		t.Fatal("want error for unknown attack")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("want error for unknown flag")
	}
}
