// Command pnmtrace runs one injection-and-traceback scenario verbosely:
// it prints the per-packet chains the sink accepts and the evolving
// verdict, then the final localization and whether one-hop precision held.
//
// Usage:
//
//	pnmtrace -scheme pnm -attack drop -n 10 -packets 200 -seed 1 [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pnm/internal/analytic"
	"pnm/internal/marking"
	"pnm/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnmtrace:", err)
		os.Exit(1)
	}
}

// run executes the scenario.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pnmtrace", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "pnm", "marking scheme: pnm, nested, naive, ams, ppm")
		attack     = fs.String("attack", "none", "attack: none, nomark, insert, remove, reorder, alter, drop, swap")
		n          = fs.Int("n", 10, "forwarding path length")
		packets    = fs.Int("packets", 200, "packets to inject")
		seed       = fs.Int64("seed", 1, "RNG seed")
		molePos    = fs.Int("mole", 0, "forwarding mole position (1 = nearest the source; 0 = middle)")
		marks      = fs.Float64("marks", 3, "average marks per packet (sets p)")
		verbose    = fs.Bool("v", false, "print each delivered packet's accepted chain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := analytic.ProbabilityForMarks(*n, *marks)
	scheme, err := marking.New(*schemeName, p)
	if err != nil {
		return err
	}
	r, err := sim.NewChainRunner(sim.ChainConfig{
		Forwarders: *n,
		Scheme:     scheme,
		Attack:     sim.AttackKind(*attack),
		MolePos:    *molePos,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "scheme=%s attack=%s path=%d packets=%d p=%.3f\n",
		scheme.Name(), *attack, *n, *packets, p)
	fmt.Fprintf(w, "source mole: %v", r.SourceID())
	if r.MoleID() != 0 {
		fmt.Fprintf(w, ", forwarding mole: %v", r.MoleID())
	}
	fmt.Fprintf(w, "\nforwarding path (V1..Vn): %v\n\n", r.Forwarders())

	for i := 0; i < *packets; i++ {
		res, delivered := r.Step()
		if !*verbose {
			continue
		}
		if !delivered {
			fmt.Fprintf(w, "pkt %3d: dropped by mole\n", i+1)
			continue
		}
		status := ""
		if res.Stopped {
			status = "  (verification stopped at an invalid mark)"
		}
		fmt.Fprintf(w, "pkt %3d: accepted chain %v%s\n", i+1, res.Chain, status)
	}

	v := r.Tracker().Verdict()
	fmt.Fprintf(w, "\ndelivered %d/%d packets\n", r.Delivered(), r.Offered())
	if !v.HasStop {
		fmt.Fprintln(w, "verdict: no marks accepted — traceback has nothing to work with")
	} else {
		fmt.Fprintf(w, "verdict: stop node %v, suspects %v\n", v.Stop, v.Suspects)
		if len(v.Loop) > 0 {
			fmt.Fprintf(w, "identity-swap loop detected: %v\n", v.Loop)
		}
		if route, ok := r.Tracker().Order().Route(); ok {
			fmt.Fprintf(w, "reconstructed route: %v -> sink\n", route)
		}
		fmt.Fprintf(w, "unequivocally identified: %v\n", v.Identified)
	}
	if r.SecurityHolds() {
		fmt.Fprintln(w, "one-hop precision: HELD (a mole is inside the suspected neighborhood)")
	} else if r.Delivered() == 0 {
		fmt.Fprintln(w, "one-hop precision: N/A (the attack dropped all traffic and defeated itself)")
	} else {
		fmt.Fprintln(w, "one-hop precision: BROKEN (the sink was misled or the moles stayed hidden)")
	}
	return nil
}
