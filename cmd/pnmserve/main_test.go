package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"pnm/internal/loadgen"
	"pnm/internal/transport"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// listenAddr polls the buffer until the "listening on" banner appears and
// returns the bound address.
func listenAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := out.String()
		if i := strings.Index(s, "listening on "); i >= 0 {
			rest := s[i+len("listening on "):]
			if j := strings.IndexAny(rest, " \n"); j >= 0 {
				return rest[:j]
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never printed its listen address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeLoopback boots the full command on an ephemeral port, replays
// the matching scenario stream at it over TCP, and checks the verdict
// line against the in-process ground truth.
func TestServeLoopback(t *testing.T) {
	const packets = 150
	args := []string{
		"-listen", "127.0.0.1:0",
		"-nodes", "80", "-side", "5", "-range", "1.4", "-seed", "3",
		"-packets", "150", "-workers", "2", "-timeout", "20s",
	}
	sc, err := loadgen.New(loadgen.Config{Nodes: 80, Side: 5, RadioRange: 1.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := loadgen.FormatVerdict(sc.Verdict(packets))

	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(args, out) }()

	cl, err := transport.Dial(listenAddr(t, out))
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range sc.Stream(packets) {
		if err := cl.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run never exited; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), want) {
		t.Fatalf("verdict line missing\nwant: %s\noutput:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), "delivered 150") {
		t.Fatalf("delivered count missing; output:\n%s", out.String())
	}
}

// TestServeShardedLoopback boots the command with -shards 4 and checks
// the verdict line still matches the in-process (unsharded) ground truth
// — the cluster's determinism contract through the full binary.
func TestServeShardedLoopback(t *testing.T) {
	const packets = 150
	args := []string{
		"-listen", "127.0.0.1:0",
		"-nodes", "80", "-side", "5", "-range", "1.4", "-seed", "3",
		"-packets", "150", "-shards", "4", "-timeout", "20s",
	}
	sc, err := loadgen.New(loadgen.Config{Nodes: 80, Side: 5, RadioRange: 1.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := loadgen.FormatVerdict(sc.Verdict(packets))

	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(args, out) }()

	cl, err := transport.Dial(listenAddr(t, out))
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range sc.Stream(packets) {
		if err := cl.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run never exited; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), want) {
		t.Fatalf("sharded verdict line missing\nwant: %s\noutput:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), "4 shards") {
		t.Fatalf("shard banner missing; output:\n%s", out.String())
	}
}

// TestServeBadFlags covers flag validation paths.
func TestServeBadFlags(t *testing.T) {
	if err := run([]string{"-queue", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad -queue accepted")
	}
	if err := run([]string{"-chaos", "-packets", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-chaos without -packets accepted")
	}
	if err := run([]string{"-nodes", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
}
