// Command pnmserve is the networked sink: it listens for framed marked
// reports on real TCP (and optionally UDP) sockets, verifies them
// through the sink pipeline, and prints the traceback verdict — the
// in-process simulator's sink turned into a service.
//
// Usage:
//
//	pnmserve -listen 127.0.0.1:7101 -nodes 300 -side 10 -range 1.3 -packets 400
//
// The scenario flags (-nodes/-side/-range/-seed) regenerate the exact
// deployment and key material a pnmload with the same flags generates
// traffic for; the final verdict line is byte-identical to the one the
// same scenario produces in-process (pnmload -expect prints it).
//
// -chaos derives the sink-crash events of a PR 5 fault plan and fires
// them against the live server: the tracker checkpoints (PNM2), goes
// down — arrivals are dropped and counted — and restores mid-stream.
// -queue selects the ingest overflow policy (block, drop-newest,
// drop-oldest); -workers sizes the verification pipeline; -shards runs
// the sink as a cluster of independently checkpointed shards instead
// (verdicts are byte-identical at any shard count, and -chaos then
// crashes and restores a single shard rather than the whole sink).
// -stats dumps
// the obs registry (transport.*, sink.*) to stderr at exit; -debug ADDR
// additionally serves pprof and expvar.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pnm/internal/loadgen"
	"pnm/internal/netsim"
	"pnm/internal/obs"
	"pnm/internal/queue"
	"pnm/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnmserve:", err)
		os.Exit(1)
	}
}

// debugReg backs the expvar "pnm" variable; see pnmlive for the pattern
// (expvar publishes once per process, run may execute repeatedly under
// test).
var (
	debugOnce sync.Once
	debugReg  atomic.Pointer[obs.Registry]
)

// serveDebug publishes reg on addr and returns a clean shutdown func.
func serveDebug(addr string, reg *obs.Registry) (func() error, error) {
	debugReg.Store(reg)
	debugOnce.Do(func() {
		expvar.Publish("pnm", expvar.Func(func() any { return debugReg.Load().Map() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
	return func() error {
		srv.Close()
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}, nil
}

// chaosFromFaultPlan maps a PR 5 fault plan onto the transport server:
// only the sink and shard events exist here (there are no simulated nodes
// or links in front of a real socket), so node/link events are dropped
// and the milestones carry over as processed-frame counts.
func chaosFromFaultPlan(plan *netsim.FaultPlan) *transport.ChaosPlan {
	out := &transport.ChaosPlan{}
	for _, ev := range plan.Events {
		switch ev.Kind {
		case netsim.FaultSinkCrash:
			out.Events = append(out.Events, transport.ChaosEvent{At: ev.At, Kind: transport.ChaosSinkCrash})
		case netsim.FaultSinkRestore:
			out.Events = append(out.Events, transport.ChaosEvent{At: ev.At, Kind: transport.ChaosSinkRestore})
		case netsim.FaultShardCrash:
			out.Events = append(out.Events, transport.ChaosEvent{At: ev.At, Kind: transport.ChaosShardCrash, Shard: ev.Shard})
		case netsim.FaultShardRestore:
			out.Events = append(out.Events, transport.ChaosEvent{At: ev.At, Kind: transport.ChaosShardRestore, Shard: ev.Shard})
		}
	}
	return out
}

// run executes the server.
func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("pnmserve", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:7101", "TCP listen address (:0 picks a port)")
		udpAddr    = fs.String("udp", "", "optional UDP listen address")
		nodes      = fs.Int("nodes", 300, "scenario: sensor node count")
		side       = fs.Float64("side", 10, "scenario: deployment square side")
		radioRange = fs.Float64("range", 1.3, "scenario: radio range")
		seed       = fs.Int64("seed", 1, "scenario: RNG seed")
		packets    = fs.Int("packets", 400, "exit after this many ingested reports (0 = until killed)")
		workers    = fs.Int("workers", 1, "sink verification pipeline workers (<=1 serial)")
		shards     = fs.Int("shards", 1, "sink cluster shards (<=1 unsharded; supersedes -workers)")
		queueFlag  = fs.String("queue", "block", "ingest overflow policy: block, drop-newest, drop-oldest")
		depth      = fs.Int("queue-depth", 256, "ingest queue depth")
		maxFrame   = fs.Int("max-frame", transport.DefaultMaxFrameBytes, "max frame payload bytes accepted from a peer")
		maxMarks   = fs.Int("max-marks", transport.DefaultMaxMarks, "max marks accepted per report")
		chaos      = fs.Bool("chaos", false, "fire a seeded fault plan's sink crash/restore events against the live server")
		stats      = fs.Bool("stats", false, "dump obs counters to stderr at exit")
		debugAddr  = fs.String("debug", "", "serve pprof and expvar obs counters on this address")
		timeout    = fs.Duration("timeout", 5*time.Minute, "give up waiting for -packets after this long")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := queue.Parse(*queueFlag)
	if err != nil {
		return err
	}
	sc, err := loadgen.New(loadgen.Config{
		Nodes: *nodes, Side: *side, RadioRange: *radioRange, Seed: *seed,
	})
	if err != nil {
		return err
	}

	reg := obs.New()
	if *debugAddr != "" {
		stop, derr := serveDebug(*debugAddr, reg)
		if derr != nil {
			return derr
		}
		defer func() {
			if derr := stop(); derr != nil && err == nil {
				err = derr
			}
		}()
	}

	var plan *transport.ChaosPlan
	if *chaos {
		if *packets <= 0 {
			return fmt.Errorf("-chaos needs -packets to place its milestones")
		}
		// Sharded servers take the crash at shard granularity: one shard
		// checkpoints and goes down while the sink stays up; unsharded
		// servers keep the PR 5 whole-sink crash.
		planCfg := netsim.FaultPlanConfig{Start: *packets / 8, Step: *packets / 8}
		if *shards > 1 {
			planCfg.ShardCrashes, planCfg.Shards = 1, *shards
		} else {
			planCfg.SinkCrashes = 1
		}
		full := netsim.GenerateFaultPlan(*seed, sc.Topo, planCfg)
		plan = chaosFromFaultPlan(full)
		fmt.Fprintf(os.Stderr, "chaos plan: %v\n", plan.Events)
	}

	srv, err := transport.Listen(*listen, *udpAddr, transport.Config{
		NewVerifier: sc.NewVerifier,
		Topo:        sc.Topo,
		Workers:     *workers,
		Shards:      *shards,
		QueueDepth:  *depth,
		Policy:      policy,
		Limits:      transport.Limits{MaxFrameBytes: *maxFrame, MaxMarks: *maxMarks},
		Obs:         reg,
		Chaos:       plan,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Fprintf(w, "listening on %s", srv.Addr())
	if u := srv.UDPAddr(); u != nil {
		fmt.Fprintf(w, " (udp %s)", u)
	}
	if *shards > 1 {
		fmt.Fprintf(w, "\nscenario: %d nodes, mole %v at %d hops, policy %s, %d shards\n",
			sc.Topo.NumNodes(), sc.Mole, sc.Hops, policy, *shards)
	} else {
		fmt.Fprintf(w, "\nscenario: %d nodes, mole %v at %d hops, policy %s, %d workers\n",
			sc.Topo.NumNodes(), sc.Mole, sc.Hops, policy, *workers)
	}

	if *packets > 0 {
		if err := srv.WaitDelivered(*packets, *timeout); err != nil {
			return err
		}
	} else {
		// Run until the process is killed; WaitDelivered can never
		// satisfy a want beyond all traffic, so park on a huge target.
		srv.WaitDelivered(int(^uint(0)>>1), *timeout)
	}
	fmt.Fprintf(w, "delivered %d\n", srv.Delivered())
	fmt.Fprintln(w, loadgen.FormatVerdict(srv.Verdict()))
	if *stats {
		fmt.Fprintln(os.Stderr, "\nobs counters:")
		reg.Fprint(os.Stderr)
	}
	return nil
}
