package pnm

import "pnm/internal/suspect"

// TrafficClassifier is the sink-side stream triage of §7 "Background
// Traffic": it flags streams whose volume is anomalous against the median
// stream, or whose reports fail application-level verification, so that
// traceback runs only on suspicious traffic.
type TrafficClassifier = suspect.Classifier

// NewTrafficClassifier returns a classifier over a sliding window of the
// given size.
func NewTrafficClassifier(windowSize int) *TrafficClassifier {
	return suspect.NewClassifier(windowSize)
}
