package pnm_test

import (
	"fmt"

	pnm "pnm"
)

// ExampleSystem_TraceInjection demonstrates the core flow: a compromised
// node injects bogus reports and the sink traces it to a one-hop
// neighborhood.
func ExampleSystem_TraceInjection() {
	topo, _ := pnm.NewChain(11)
	keys := pnm.NewKeyStore([]byte("example"))
	sys, _ := pnm.NewSystem(topo, keys, pnm.PNMScheme(pnm.MarkingProbability(10, 3)))

	verdict, _ := sys.TraceInjection(pnm.TraceConfig{Source: 11, Packets: 200, Seed: 1})
	fmt.Println("stop:", verdict.Stop)
	fmt.Println("identified:", verdict.Identified)
	fmt.Println("mole in neighborhood:", verdict.SuspectsContain(11))
	// Output:
	// stop: V10
	// identified: true
	// mole in neighborhood: true
}

// ExampleNewChainScenario runs the paper's selective-dropping attack
// against PNM: the anonymous IDs leave the colluder nothing to match on.
func ExampleNewChainScenario() {
	r, _ := pnm.NewChainScenario(pnm.ChainScenario{
		Forwarders: 10,
		Scheme:     pnm.PNMScheme(0.3),
		Attack:     pnm.AttackDrop,
		Seed:       7,
	})
	r.Run(300)
	fmt.Println("one-hop precision held:", r.SecurityHolds())
	// Output:
	// one-hop precision held: true
}

// ExampleTraceSinglePacket shows basic nested marking's single-packet
// traceback.
func ExampleTraceSinglePacket() {
	topo, _ := pnm.NewChain(8)
	keys := pnm.NewKeyStore([]byte("example"))
	sys, _ := pnm.NewSystem(topo, keys, pnm.NestedScheme())

	verdict, _ := sys.TraceInjection(pnm.TraceConfig{Source: 8, Packets: 1, Seed: 2})
	fmt.Println("stop:", verdict.Stop, "suspects:", verdict.Suspects)
	// Output:
	// stop: V7 suspects: [V7 V6 V8]
}
