package pnm

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`). Each figure/table bench
// reports its headline quantity via b.ReportMetric so the paper-vs-measured
// comparison in EXPERIMENTS.md can be reproduced from the bench output
// alone; cmd/pnmsim prints the full series.

import (
	"math/rand"
	"testing"

	"pnm/internal/analytic"
	"pnm/internal/experiment"
	"pnm/internal/mac"
	"pnm/internal/marking"
	"pnm/internal/packet"
	"pnm/internal/sink"
	"pnm/internal/topology"
)

// BenchmarkFig4 regenerates the analytic collection-probability curves
// (Figure 4) and reports the 90%-confidence packet counts the paper quotes
// (13/33/54 for n=10/20/30).
func BenchmarkFig4(b *testing.B) {
	var p90n20 int
	for i := 0; i < b.N; i++ {
		_ = experiment.Fig4(experiment.DefaultFig4())
		p90n20 = analytic.PacketsForConfidence(20, analytic.ProbabilityForMarks(20, 3), 0.9)
	}
	b.ReportMetric(float64(p90n20), "pkts_90pct_n20")
	b.ReportMetric(float64(analytic.PacketsForConfidence(10, 0.3, 0.9)), "pkts_90pct_n10")
	b.ReportMetric(float64(analytic.PacketsForConfidence(30, 0.1, 0.9)), "pkts_90pct_n30")
}

// BenchmarkFig5 regenerates the simulated mark-collection curves
// (Figure 5) and reports the percentage of a 10-hop path collected within
// 7 packets (the paper: ~90%).
func BenchmarkFig5(b *testing.B) {
	cfg := experiment.Fig5Config{
		PathLens: []int{10}, MarksPerPacket: 3, MaxPackets: 20, Runs: 100, Seed: 1,
	}
	var at7 float64
	for i := 0; i < b.N; i++ {
		series, err := experiment.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		at7 = series[0].Y[6]
	}
	b.ReportMetric(at7, "pct_collected_7pkts_n10")
}

// BenchmarkFig6 regenerates the identification-failure counts (Figure 6)
// and reports failures out of the run count at 200 packets for a 20-hop
// path (the paper: ~0).
func BenchmarkFig6(b *testing.B) {
	cfg := experiment.Fig67Config{
		PathLens: []int{20}, MarksPerPacket: 3, Traffics: []int{200}, Runs: 30, Seed: 2,
	}
	var failures float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig67(cfg)
		if err != nil {
			b.Fatal(err)
		}
		failures = res.Failures[0].Y[0]
	}
	b.ReportMetric(failures/float64(cfg.Runs), "failure_rate_200pkts_n20")
}

// BenchmarkFig7 regenerates the packets-to-identify curve (Figure 7) and
// reports the mean for a 20-hop path (the paper: ~55).
func BenchmarkFig7(b *testing.B) {
	cfg := experiment.Fig67Config{
		PathLens: []int{20}, MarksPerPacket: 3, Traffics: []int{800}, Runs: 30, Seed: 2,
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig67(cfg)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.AvgPackets.Y[0]
	}
	b.ReportMetric(avg, "avg_pkts_to_identify_n20")
}

// BenchmarkSecurityMatrix regenerates the scheme-by-attack security matrix
// (the executable form of §3 and §5) and reports how many of the five
// schemes stay one-hop precise under every applicable attack (the paper:
// 2 — nested and PNM).
func BenchmarkSecurityMatrix(b *testing.B) {
	cfg := experiment.MatrixConfig{Forwarders: 10, MarksPerPacket: 3, Packets: 300, Seed: 3}
	var fullySecure float64
	for i := 0; i < b.N; i++ {
		cells, err := experiment.SecurityMatrix(cfg)
		if err != nil {
			b.Fatal(err)
		}
		secure := map[string]bool{}
		for _, c := range cells {
			if _, ok := secure[c.Scheme]; !ok {
				secure[c.Scheme] = true
			}
			if !c.Secure && !c.SelfDefeating {
				secure[c.Scheme] = false
			}
		}
		fullySecure = 0
		for _, ok := range secure {
			if ok {
				fullySecure++
			}
		}
	}
	b.ReportMetric(fullySecure, "schemes_secure_under_all_attacks")
}

// BenchmarkHeadline regenerates the headline claim (§1/§6/§9): packets to
// catch a mole 20 hops away (the paper: ~50) and the Mica2 latency.
func BenchmarkHeadline(b *testing.B) {
	cfg := experiment.HeadlineConfig{
		PathLens: []int{20}, MarksPerPacket: 3, Runs: 20, MaxPackets: 400, Seed: 4,
	}
	var row experiment.HeadlineRow
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Headline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	b.ReportMetric(row.AvgPackets, "pkts_to_catch_20hops")
	b.ReportMetric(row.Latency.Seconds(), "latency_s_20hops")
}

// BenchmarkAblationP regenerates the marking-probability trade-off (E10)
// and reports packets-to-catch at np=1 vs np=3.
func BenchmarkAblationP(b *testing.B) {
	cfg := experiment.AblationConfig{
		Forwarders:           10,
		MarksPerPacketValues: []float64{1, 3},
		Runs:                 15,
		MaxPackets:           600,
		Seed:                 5,
	}
	var rows []experiment.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.AblateMarkingProbability(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgPackets, "pkts_np1")
	b.ReportMetric(rows[1].AvgPackets, "pkts_np3")
}

// BenchmarkFilterCompare regenerates the filtering-vs-traceback table
// (E11) and reports the time-to-catch at q=0.1.
func BenchmarkFilterCompare(b *testing.B) {
	cfg := experiment.DefaultFilterCompare()
	var rows []experiment.FilterCompareRow
	for i := 0; i < b.N; i++ {
		rows = experiment.FilterCompare(cfg)
	}
	for _, r := range rows {
		if r.Q == 0.1 {
			b.ReportMetric(r.SecondsToCatch, "s_to_catch_q0.1")
		}
	}
}

// benchNet builds a geometric network, key store and a PNM-marked packet
// batch for the sink-side micro benches.
func benchNet(b *testing.B, nodes int) (*topology.Network, *mac.KeyStore, marking.Scheme, []packet.Message) {
	b.Helper()
	side := 1.0
	for side*side*8 < float64(nodes) {
		side *= 1.1
	}
	topo, err := topology.NewRandomGeometric(topology.GeometricConfig{
		Nodes: nodes, Side: side, RadioRange: 1, Seed: 6, SinkAtCorner: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := mac.NewKeyStore([]byte("bench"))
	src := topo.DeepestNode()
	hops := topo.Depth(src) - 1
	scheme := marking.PNM{P: analytic.ProbabilityForMarks(hops, 3)}
	rng := rand.New(rand.NewSource(7))
	msgs := make([]packet.Message, 64)
	for i := range msgs {
		msg := packet.Message{Report: packet.Report{Event: 0xB, Seq: uint32(i + 1)}}
		for _, hop := range topo.Forwarders(src) {
			msg = scheme.Mark(hop, keys.Key(hop), msg, rng)
		}
		msgs[i] = msg
	}
	return topo, keys, scheme, msgs
}

// BenchmarkAnonTableBuild measures building the per-report anonymous-ID
// table for a 1024-node network — §4.2 argues this takes milliseconds for
// a few thousand nodes.
func BenchmarkAnonTableBuild(b *testing.B) {
	topo, keys, _, _ := benchNet(b, 1024)
	nodes := topo.Nodes()
	resolver := sink.NewExhaustiveResolver(keys, nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh report defeats the cache, forcing a full table build.
		rep := packet.Report{Event: 1, Seq: uint32(i + 1)}
		anon := mac.AnonID(keys.Key(nodes[0]), rep, nodes[0])
		sink.ResolveAll(resolver, rep, anon, 0, false, 0)
	}
}

// benchInterleaved verifies an interleaved multi-source stream — consecutive
// packets carry different reports — under an exhaustive resolver with the
// given table-cache capacity. Capacity 1 reproduces the old single-report
// cache; the default LRU capacity covers the live report working set.
func benchInterleaved(b *testing.B, capacity int) {
	topo, keys, scheme, _ := benchNet(b, 1024)
	const sources = 8
	rng := rand.New(rand.NewSource(11))
	msgs := make([]packet.Message, sources)
	for i := range msgs {
		msg := packet.Message{Report: packet.Report{Event: 0xC, Location: uint32(i), Seq: 1}}
		src := topo.DeepestNode()
		for _, hop := range topo.Forwarders(src) {
			msg = scheme.Mark(hop, keys.Key(hop), msg, rng)
		}
		msgs[i] = msg
	}
	v, err := sink.NewVerifier(scheme, keys, topo.NumNodes(),
		sink.NewExhaustiveResolverCache(keys, topo.Nodes(), capacity))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Round-robin across sources: every packet switches reports.
		v.Verify(msgs[i%len(msgs)])
	}
}

// BenchmarkVerifyInterleavedSingleEntry measures the pre-LRU behavior: a
// capacity-1 table cache rebuilds the O(n) anonymous-ID table on every
// packet of an interleaved multi-source stream.
func BenchmarkVerifyInterleavedSingleEntry(b *testing.B) {
	benchInterleaved(b, 1)
}

// BenchmarkVerifyInterleavedLRU measures the same stream with the default
// LRU capacity, which holds every live report's table.
func BenchmarkVerifyInterleavedLRU(b *testing.B) {
	benchInterleaved(b, sink.DefaultTableCacheSize)
}

// BenchmarkSinkVerifyPNM measures full packet verification with the
// exhaustive resolver — the paper claims several hundred packets per
// second suffice for sensor data rates.
func BenchmarkSinkVerifyPNM(b *testing.B) {
	topo, keys, scheme, msgs := benchNet(b, 1024)
	v, err := sink.NewVerifier(scheme, keys, topo.NumNodes(), sink.NewExhaustiveResolver(keys, topo.Nodes()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Verify(msgs[i%len(msgs)])
	}
}

// BenchmarkResolveExhaustive and BenchmarkResolveTopology compare the two
// anonymous-ID resolution strategies (§7's O(d) optimization, E8).
func BenchmarkResolveExhaustive(b *testing.B) {
	benchResolve(b, false)
}

// BenchmarkResolveTopology is the O(d) ring-expanding counterpart.
func BenchmarkResolveTopology(b *testing.B) {
	benchResolve(b, true)
}

// benchResolve runs packet verification under the chosen resolver.
func benchResolve(b *testing.B, topoResolver bool) {
	topo, keys, scheme, msgs := benchNet(b, 1024)
	var r sink.Resolver
	if topoResolver {
		r = sink.NewTopologyResolver(keys, topo)
	} else {
		r = sink.NewExhaustiveResolver(keys, topo.Nodes())
	}
	v, err := sink.NewVerifier(scheme, keys, topo.NumNodes(), r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Verify(msgs[i%len(msgs)])
	}
}

// BenchmarkMarkPNM measures the node-side cost of one PNM marking decision
// plus mark computation — the per-hop work a Mica2-class node would do.
func BenchmarkMarkPNM(b *testing.B) {
	benchMark(b, marking.PNM{P: 1})
}

// BenchmarkMarkNested measures basic nested marking's per-hop cost.
func BenchmarkMarkNested(b *testing.B) {
	benchMark(b, marking.Nested{})
}

// BenchmarkMarkAMS measures the AMS baseline's per-hop cost.
func BenchmarkMarkAMS(b *testing.B) {
	benchMark(b, marking.AMS{P: 1})
}

// benchMark drives one scheme's Mark on a message carrying three marks.
func benchMark(b *testing.B, scheme marking.Scheme) {
	keys := mac.NewKeyStore([]byte("bench"))
	rng := rand.New(rand.NewSource(8))
	msg := packet.Message{Report: packet.Report{Event: 2, Seq: 9}}
	for _, id := range []packet.NodeID{5, 4, 3} {
		msg = marking.Nested{}.Mark(id, keys.Key(id), msg, rng)
	}
	key := keys.Key(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scheme.Mark(2, key, msg, rng)
	}
}

// BenchmarkOrderAddChain measures folding one verified chain into the
// route-reconstruction matrix.
func BenchmarkOrderAddChain(b *testing.B) {
	chains := make([][]packet.NodeID, 32)
	rng := rand.New(rand.NewSource(9))
	for i := range chains {
		n := 2 + rng.Intn(4)
		c := make([]packet.NodeID, n)
		for j := range c {
			c[j] = packet.NodeID(1 + rng.Intn(30))
		}
		chains[i] = c
	}
	b.ResetTimer()
	order := sink.NewOrder()
	for i := 0; i < b.N; i++ {
		order.AddChain(chains[i%len(chains)])
		if i%4096 == 0 {
			order = sink.NewOrder() // bound growth
		}
	}
}

// BenchmarkKeyedHash measures the raw MAC primitive, the unit the paper's
// "2.5 million hashes per second" feasibility argument is stated in.
func BenchmarkKeyedHash(b *testing.B) {
	keys := mac.NewKeyStore([]byte("bench"))
	k := keys.Key(1)
	data := make([]byte, 48)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mac.Sum(k, data)
	}
}
