# Convenience targets for the pnm repository.

GO ?= go

# Worker goroutines for the run-parallel experiments; <= 0 selects
# GOMAXPROCS. Results are byte-identical for every value.
WORKERS ?= 0

.PHONY: all build test race vet lint bench bench-resolver bench-sink bench-fault bench-shard bench-scale bench-churn fuzz-smoke soak ci figures examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the determinism, ownership, locking
# and allocation invariants (wallclock, globalrand, maporder, ownership,
# guardedby, golife, noalloc — see internal/lint) plus a gofmt check.
# pnmlint runs `go build -gcflags=-m` itself to feed the noalloc analyzer
# real escape-analysis facts; the build cache replays those diagnostics,
# so warm runs skip the compile. Fails on any diagnostic or unformatted
# file; `go run ./cmd/pnmlint -json ./...` emits the same findings
# machine-readably.
lint:
	$(GO) run ./cmd/pnmlint ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the committed resolver performance baseline. The counters in
# the document are deterministic; only the ns_per_packet timings vary with
# the machine.
bench-resolver:
	$(GO) run ./cmd/pnmsim -exp benchresolver > BENCH_resolver.json

# Regenerate the committed MAC-engine / sink-pipeline baseline. The
# verdict hashes and verdict-visible counters are deterministic; timings
# vary with the machine.
bench-sink:
	$(GO) run ./cmd/pnmsim -exp benchsink > BENCH_sink.json

# Regenerate the committed fault benchmark (E20): traceback convergence
# under deterministic fault plans. Fully deterministic — the document is a
# pure function of its config, and verdict equality with the fault-free
# baseline is enforced at generation time.
bench-fault:
	$(GO) run ./cmd/pnmsim -exp benchfault > BENCH_fault.json

# Regenerate the committed sharded-sink baseline: cluster widths 1/2/8
# versus the serial sink over keyed-source streams (10k → 1M distinct
# reports) plus a single-shard crash/restore scenario. Verdict hashes and
# verdict-visible counters are deterministic and checked against the
# unsharded baseline at generation time; timings vary with the machine.
bench-shard:
	$(GO) run ./cmd/pnmsim -exp benchshard > BENCH_shard.json

# Regenerate the committed multicore-scaling benchmark (E22): serial vs
# pipeline workers (W1-W8) vs cluster shards (1/2/8) over the keyed-source
# workload, with per-row GOMAXPROCS/NumCPU provenance and allocation
# columns (B/op, allocs/op) bracketing only the observe region. Verdict
# hashes are checked against the serial baseline at generation time;
# timings and speedups vary with the machine - read them against the
# recorded gomaxprocs.
bench-scale:
	$(GO) run ./cmd/pnmsim -exp benchscale > BENCH_scale.json

# Regenerate the committed churn benchmark (E23): traceback under
# topology churn with epoch-versioned resolution. Fully deterministic
# apart from the two wall-clock columns; mole capture at every churn
# level, stale-resolver divergence on churned rows, and verdict-hash
# equality with a full-rebuild reference are all enforced at generation
# time.
bench-churn:
	$(GO) run ./cmd/pnmsim -exp benchchurn > BENCH_churn.json

# Short coverage-guided fuzzing over the trust boundary: the hardened
# packet decoder and the frame reader that feeds it untrusted socket
# bytes. Each harness runs FUZZTIME on top of its committed seed corpus.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeReport$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzFrame$$' -fuzztime $(FUZZTIME) ./internal/transport

# Live-server soak: pnmload-style replay into a pipelined ingest server
# over real sockets while a chaos plan crashes and restores the sink from
# its PNM2 checkpoint, all under the race detector.
soak:
	$(GO) test -race -run 'TestLoopbackSoak' -count 1 ./internal/transport

# What CI runs: build, vet, lint, the full test suite, and the race
# detector over the packages that exercise goroutines.
ci: build vet lint test
	$(GO) test -race ./internal/netsim ./internal/mac ./internal/experiment ./internal/parallel ./internal/sink ./internal/obs ./internal/transport ./internal/loadgen

# Regenerate every paper figure/table into results/. Run-averaged
# experiments fan out across $(WORKERS) workers; output is byte-identical
# for any worker count.
figures:
	mkdir -p results
	$(GO) run ./cmd/pnmsim -exp fig4 > results/fig4.csv
	$(GO) run ./cmd/pnmsim -exp fig5 -workers $(WORKERS) > results/fig5.csv
	$(GO) run ./cmd/pnmsim -exp fig6 -workers $(WORKERS) > results/fig6.csv
	$(GO) run ./cmd/pnmsim -exp fig7 -workers $(WORKERS) > results/fig7.csv
	$(GO) run ./cmd/pnmsim -exp matrix -workers $(WORKERS) > results/matrix.txt
	$(GO) run ./cmd/pnmsim -exp headline -workers $(WORKERS) > results/headline.txt
	$(GO) run ./cmd/pnmsim -exp ablate -workers $(WORKERS) > results/ablate.txt
	$(GO) run ./cmd/pnmsim -exp resolve > results/resolve.txt
	$(GO) run ./cmd/pnmsim -exp filter -workers $(WORKERS) > results/filter.txt
	$(GO) run ./cmd/pnmsim -exp related -workers $(WORKERS) > results/related.txt
	$(GO) run ./cmd/pnmsim -exp precision -workers $(WORKERS) > results/precision.txt
	$(GO) run ./cmd/pnmsim -exp overhead -workers $(WORKERS) > results/overhead.txt
	$(GO) run ./cmd/pnmsim -exp multisource -workers $(WORKERS) > results/multisource.txt
	$(GO) run ./cmd/pnmsim -exp background -workers $(WORKERS) > results/background.txt
	$(GO) run ./cmd/pnmsim -exp dynamics -workers $(WORKERS) > results/dynamics.txt
	$(GO) run ./cmd/pnmsim -exp molepos -workers $(WORKERS) > results/molepos.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/colluding
	$(GO) run ./examples/replaydefense
	$(GO) run ./examples/isolation
	$(GO) run ./examples/filtercompare
	$(GO) run ./examples/largenet

clean:
	rm -rf results
