# Convenience targets for the pnm repository.

GO ?= go

.PHONY: all build test race vet bench figures examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper figure/table into results/.
figures:
	mkdir -p results
	$(GO) run ./cmd/pnmsim -exp fig4 > results/fig4.csv
	$(GO) run ./cmd/pnmsim -exp fig5 > results/fig5.csv
	$(GO) run ./cmd/pnmsim -exp fig6 > results/fig6.csv
	$(GO) run ./cmd/pnmsim -exp fig7 > results/fig7.csv
	$(GO) run ./cmd/pnmsim -exp matrix > results/matrix.txt
	$(GO) run ./cmd/pnmsim -exp headline > results/headline.txt
	$(GO) run ./cmd/pnmsim -exp ablate > results/ablate.txt
	$(GO) run ./cmd/pnmsim -exp resolve > results/resolve.txt
	$(GO) run ./cmd/pnmsim -exp filter > results/filter.txt
	$(GO) run ./cmd/pnmsim -exp related > results/related.txt
	$(GO) run ./cmd/pnmsim -exp precision > results/precision.txt
	$(GO) run ./cmd/pnmsim -exp overhead > results/overhead.txt
	$(GO) run ./cmd/pnmsim -exp multisource > results/multisource.txt
	$(GO) run ./cmd/pnmsim -exp background > results/background.txt
	$(GO) run ./cmd/pnmsim -exp dynamics > results/dynamics.txt
	$(GO) run ./cmd/pnmsim -exp molepos > results/molepos.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/colluding
	$(GO) run ./examples/replaydefense
	$(GO) run ./examples/isolation
	$(GO) run ./examples/filtercompare
	$(GO) run ./examples/largenet

clean:
	rm -rf results
