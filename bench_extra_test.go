package pnm

// Benchmarks for the extension tables (E13–E18) and the substrate
// micro-operations. Each experiment bench uses a reduced configuration and
// reports its headline quantity, mirroring bench_test.go's pattern.

import (
	"math/rand"
	"testing"

	"pnm/internal/experiment"
	"pnm/internal/mac"
	"pnm/internal/marking"
	"pnm/internal/mole"
	"pnm/internal/node"
	"pnm/internal/packet"
	"pnm/internal/replay"
	"pnm/internal/spie"
)

// BenchmarkPrecisionTable regenerates the E13 precision table on the chain
// topology and reports the suspect-set size.
func BenchmarkPrecisionTable(b *testing.B) {
	cfg := experiment.PrecisionConfig{Runs: 4, Packets: 200, Seed: 9}
	var rows []experiment.PrecisionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Precision(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgSuspects, "chain_avg_suspects")
	b.ReportMetric(rows[0].MoleInHood, "chain_mole_in_hood")
}

// BenchmarkOverheadTable regenerates the E14 wire-overhead table and
// reports PNM's bytes/packet at 20 hops.
func BenchmarkOverheadTable(b *testing.B) {
	cfg := experiment.OverheadConfig{PathLens: []int{20}, Packets: 200, MarksPerPacket: 3, Seed: 10}
	var rows []experiment.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Overhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == "pnm" {
			b.ReportMetric(r.AvgBytes, "pnm_bytes_per_pkt")
		}
		if r.Scheme == "nested" {
			b.ReportMetric(r.AvgBytes, "nested_bytes_per_pkt")
		}
	}
}

// BenchmarkRelatedTable regenerates the E16 related-work comparison.
func BenchmarkRelatedTable(b *testing.B) {
	cfg := experiment.RelatedConfig{PathLen: 10, Packets: 100, NotifyProb: 0.3, Seed: 8}
	var rows []experiment.RelatedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RelatedComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Approach == "logging (SPIE)" {
			b.ReportMetric(float64(r.PerNodeMemoryBytes), "spie_bytes_per_node")
		}
		if r.Approach == "notification (iTrace)" {
			b.ReportMetric(float64(r.ControlMessages), "itrace_control_msgs")
		}
	}
}

// BenchmarkBackgroundTable regenerates the E17 triage comparison and
// reports the all-traffic candidate count.
func BenchmarkBackgroundTable(b *testing.B) {
	cfg := experiment.BackgroundConfig{LegitSensors: 6, LegitPerRound: 1, MolePerRound: 10, Rounds: 30, Seed: 12}
	var rows []experiment.BackgroundRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.BackgroundTraffic(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Candidates), "all_traffic_candidates")
	b.ReportMetric(float64(rows[1].Candidates), "triaged_candidates")
}

// BenchmarkMultiSourceTable regenerates the E15 campaign sweep at the
// smallest scale and reports rounds for two moles.
func BenchmarkMultiSourceTable(b *testing.B) {
	cfg := experiment.MultiSourceConfig{
		SourceCounts: []int{2}, Runs: 2, MaxRounds: 8, PacketsPerRound: 150, Seed: 11,
	}
	var rows []experiment.MultiSourceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.MultiSource(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgRounds, "rounds_2_moles")
}

// BenchmarkNodeStackHandle measures the full per-node forwarding stack
// (suppression + filter + quarantine check + nested mark) per packet.
func BenchmarkNodeStackHandle(b *testing.B) {
	keys := mac.NewKeyStore([]byte("bench"))
	stack := node.New(node.Config{
		ID:                 3,
		Key:                keys.Key(3),
		Scheme:             marking.PNM{P: 0.3},
		SuppressorCapacity: 128,
		FilterDetectProb:   0.1,
		Blacklisted:        func(packet.NodeID) bool { return false },
	})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := packet.Message{Report: packet.Report{Event: 1, Seq: uint32(i)}}
		stack.Handle(4, msg, true, rng)
	}
}

// BenchmarkBloomAddContains measures the logging substrate's per-packet
// cost.
func BenchmarkBloomAddContains(b *testing.B) {
	bl := spie.NewBloom(10000, 0.01)
	var d [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d[0] = byte(i)
		d[1] = byte(i >> 8)
		bl.Add(d[:])
		bl.Contains(d[:])
	}
}

// BenchmarkSeqWindowAccept measures the replay defense's per-report cost.
func BenchmarkSeqWindowAccept(b *testing.B) {
	w := replay.NewSeqWindow(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Accept(packet.NodeID(i%16), uint32(i))
	}
}

// BenchmarkMoleTamperPipeline measures a three-stage tamper pipeline.
func BenchmarkMoleTamperPipeline(b *testing.B) {
	keys := mac.NewKeyStore([]byte("bench"))
	rng := rand.New(rand.NewSource(2))
	scheme := marking.NaiveProbNested{P: 1}
	msg := packet.Message{Report: packet.Report{Event: 1}}
	for _, id := range []packet.NodeID{9, 8, 7, 6} {
		msg = scheme.Mark(id, keys.Key(id), msg, rng)
	}
	env := &mole.Env{Scheme: scheme, StolenKeys: map[packet.NodeID]mac.Key{5: keys.Key(5)}}
	fm := &mole.Forwarder{
		ID:       5,
		Behavior: mole.MarkNever,
		Tampers: []mole.Tamper{
			mole.RemoveByID{IDs: []packet.NodeID{9}},
			mole.ReorderFixed{First: []packet.NodeID{7}},
			mole.AlterByID{IDs: []packet.NodeID{8}},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Process(msg, env, rng)
	}
}
